"""Tests for the Figure-2 enumeration-complexity study."""

from repro.analysis.counting import (
    bound_main_term,
    count_table,
    primorials,
    worst_case_counts,
)
from repro.core.elementary import count_elementary_partitionings


class TestPrimorials:
    def test_sequence(self):
        assert primorials(250) == [2, 6, 30, 210]

    def test_limit_respected(self):
        assert all(p <= 10_000 for p in primorials(10_000))


class TestBound:
    def test_small_p_positive(self):
        assert bound_main_term(2, 3) == 3.0
        assert bound_main_term(100, 3) > 1.0

    def test_monotone_in_d(self):
        assert bound_main_term(100, 4) > bound_main_term(100, 3)


class TestCounts:
    def test_count_table_matches_direct(self):
        table = count_table([8, 30], d_values=(3,))
        assert table[0] == (8, {3: count_elementary_partitionings(8, 3)})
        assert table[1][1][3] == 27  # 3 distributions per factor, 3 factors

    def test_bound_dominates_on_primorials(self):
        """The paper's bound (with slack for the o(1)) must dominate the
        exact counts along the worst-case primorial sequence."""
        for p, count, _ in worst_case_counts(2400, d=3):
            bound = bound_main_term(p, d=3, slack=2.0)
            assert count <= bound, (p, count, bound)

    def test_growth_is_subpolynomial_in_p(self):
        """count(p)/p -> small quickly: the search stays practical
        ('complexity in p grows slowly')."""
        counts = {
            p: count_elementary_partitionings(p, 3) for p in (210, 840, 990)
        }
        for p, c in counts.items():
            assert c < p  # exponentially far below any polynomial blow-up
