"""Tests for the Figure-2 enumeration-complexity study."""

from repro.analysis.counting import (
    bound_main_term,
    count_table,
    primorials,
    worst_case_counts,
)
from repro.core.elementary import count_elementary_partitionings


class TestPrimorials:
    def test_sequence(self):
        assert primorials(250) == [2, 6, 30, 210]

    def test_limit_respected(self):
        assert all(p <= 10_000 for p in primorials(10_000))


class TestBound:
    def test_small_p_positive(self):
        assert bound_main_term(2, 3) == 3.0
        assert bound_main_term(100, 3) > 1.0

    def test_monotone_in_d(self):
        assert bound_main_term(100, 4) > bound_main_term(100, 3)


class TestCounts:
    def test_count_table_matches_direct(self):
        table = count_table([8, 30], d_values=(3,))
        assert table[0] == (8, {3: count_elementary_partitionings(8, 3)})
        assert table[1][1][3] == 27  # 3 distributions per factor, 3 factors

    def test_bound_dominates_on_primorials(self):
        """The paper's bound (with slack for the o(1)) must dominate the
        exact counts along the worst-case primorial sequence."""
        for p, count, _ in worst_case_counts(2400, d=3):
            bound = bound_main_term(p, d=3, slack=2.0)
            assert count <= bound, (p, count, bound)

    def test_growth_is_subpolynomial_in_p(self):
        """count(p)/p -> small quickly: the search stays practical
        ('complexity in p grows slowly')."""
        counts = {
            p: count_elementary_partitionings(p, 3) for p in (210, 840, 990)
        }
        for p, c in counts.items():
            assert c < p  # exponentially far below any polynomial blow-up


class TestScheduleCommTotals:
    """Hand-computed closed forms; the skeleton simulation cross-check
    lives in tests/sweep/test_skeleton.py."""

    def _partitioning(self, p, shape):
        from repro.core.api import plan_multipartitioning
        from repro.core.cost import CostModel

        return plan_multipartitioning(shape, p, CostModel()).partitioning

    def test_sweep_totals_by_hand(self):
        from repro.analysis.counting import schedule_comm_totals
        from repro.sweep.ops import SweepOp

        shape = (12, 12, 12)
        part = self._partitioning(6, shape)  # gammas (3, 6, 2), 6 ranks
        assert part.gammas == (3, 6, 2)
        schedule = [SweepOp(axis=0)]
        messages, nbytes = schedule_comm_totals(shape, part, schedule)
        # gamma_0 = 3: two phase transitions, one aggregated message per
        # rank each, each transition moving one 12x12 boundary plane total
        assert messages == (3 - 1) * 6
        assert nbytes == (3 - 1) * 8 * 12 * 12

    def test_aggregation_off_counts_tiles(self):
        from repro.analysis.counting import schedule_comm_totals
        from repro.sweep.ops import SweepOp

        shape = (12, 12, 12)
        part = self._partitioning(6, shape)  # gammas (3, 6, 2)
        schedule = [SweepOp(axis=1)]  # gamma = 6, 3*2 tiles per slab
        messages, nbytes = schedule_comm_totals(
            shape, part, schedule, aggregate=False
        )
        assert messages == (6 - 1) * (3 * 2)
        assert nbytes == (6 - 1) * 8 * 12 * 12  # bytes unchanged

    def test_stencil_totals_by_hand(self):
        from repro.analysis.counting import schedule_comm_totals
        from repro.sweep.ops import StencilOp

        shape = (12, 12, 12)
        part = self._partitioning(4, shape)  # gammas (2, 2, 2)
        assert part.gammas == (2, 2, 2)
        op = StencilOp(
            fn=lambda padded: padded[1:-1],
            reach=((1, 1), (0, 0), (0, 0)),
        )
        messages, nbytes = schedule_comm_totals(shape, part, [op])
        # axis 0, both sides: all 4 ranks send one aggregated face message;
        # (gamma-1) interior boundaries each ship one width-1 face plane
        assert messages == 2 * 4
        assert nbytes == 2 * (2 - 1) * 1 * 8 * 12 * 12

    def test_unsplit_axis_is_free(self):
        from repro.analysis.counting import schedule_comm_totals
        from repro.sweep.ops import SweepOp

        shape = (16, 16, 16)
        part = self._partitioning(2, shape)  # gammas (1, 2, 2)
        assert part.gammas[0] == 1
        messages, nbytes = schedule_comm_totals(
            shape, part, [SweepOp(axis=0)]
        )
        assert (messages, nbytes) == (0, 0)
