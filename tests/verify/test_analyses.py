"""Unit tests of the communication analyses over hand-built IRs."""

from repro.simmpi.message import ANY_TAG
from repro.verify import (
    IRRecv,
    IRSend,
    ProgramIR,
    check_deadlock,
    check_matching,
    check_races,
    execute_abstract,
    verify_ir,
)


def prog(*ranks):
    """Build a ProgramIR from per-rank op specs:
    ("s", dest, tag[, nbytes]) / ("r", source, tag)."""
    built = []
    for rank, specs in enumerate(ranks):
        ops = []
        for spec in specs:
            if spec[0] == "s":
                nbytes = spec[3] if len(spec) > 3 else 8
                ops.append(IRSend(rank, len(ops), spec[1], spec[2], nbytes))
            else:
                ops.append(IRRecv(rank, len(ops), spec[1], spec[2]))
        built.append(tuple(ops))
    return ProgramIR(len(built), tuple(built))


def kinds(result):
    return [v.kind for v in result.violations]


class TestAbstractExecution:
    def test_clean_exchange_completes(self):
        ir = prog([("s", 1, 7)], [("r", 0, 7)])
        run = execute_abstract(ir)
        assert run.completed
        assert run.matching == {(0, 0): (1, 0)}
        assert run.unmatched_sends == ()

    def test_head_to_head_blocks(self):
        ir = prog([("r", 1, 1), ("s", 1, 2)], [("r", 0, 2), ("s", 0, 1)])
        run = execute_abstract(ir)
        assert not run.completed
        assert run.blocked == {0: (0, 0), 1: (1, 0)}

    def test_any_tag_matches_in_issue_order(self):
        ir = prog(
            [("s", 1, 30), ("s", 1, 20)],
            [("r", 0, ANY_TAG), ("r", 0, ANY_TAG)],
        )
        run = execute_abstract(ir)
        assert run.completed
        # earliest issued message first, regardless of tag value
        assert run.matching[(0, 0)] == (1, 0)
        assert run.matching[(0, 1)] == (1, 1)

    def test_fifo_per_channel(self):
        ir = prog(
            [("s", 1, 5, 10), ("s", 1, 5, 20)],
            [("r", 0, 5), ("r", 0, 5)],
        )
        run = execute_abstract(ir)
        assert run.completed
        assert run.matching[(0, 0)] == (1, 0)


class TestMatching:
    def test_clean(self):
        ir = prog([("s", 1, 7)], [("r", 0, 7)])
        assert check_matching(ir).ok

    def test_orphan_send(self):
        ir = prog([("s", 1, 7), ("s", 1, 7)], [("r", 0, 7)])
        result = check_matching(ir)
        assert kinds(result) == ["orphan-send"]
        witness = result.violations[0].witness
        assert witness["channel"] == {"src": 0, "dst": 1}
        assert witness["unconsumed"] == 1
        assert witness["ops"][0]["kind"] == "send"

    def test_missing_send(self):
        ir = prog([("s", 1, 7)], [("r", 0, 7), ("r", 0, 7)])
        result = check_matching(ir)
        assert kinds(result) == ["missing-send"]
        assert result.violations[0].witness["channel"]["tag"] == 7

    def test_any_tag_absorbs_leftover_sends(self):
        ir = prog(
            [("s", 1, 3), ("s", 1, 4)],
            [("r", 0, ANY_TAG), ("r", 0, ANY_TAG)],
        )
        assert check_matching(ir).ok

    def test_any_tag_deficit(self):
        ir = prog([], [("r", 0, ANY_TAG)])
        result = check_matching(ir)
        assert kinds(result) == ["any-tag-deficit"]

    def test_stats(self):
        ir = prog([("s", 1, 7)], [("r", 0, 7)])
        stats = check_matching(ir).stats
        assert stats == {"sends": 1, "recvs": 1, "pairs": 1, "channels": 1}


class TestDeadlock:
    def test_completed_run_is_ok(self):
        ir = prog([("s", 1, 7)], [("r", 0, 7)])
        assert check_deadlock(ir, execute_abstract(ir)).ok

    def test_two_rank_cycle_with_witness(self):
        ir = prog([("r", 1, 1), ("s", 1, 2)], [("r", 0, 2), ("s", 0, 1)])
        result = check_deadlock(ir, execute_abstract(ir))
        assert kinds(result) == ["cycle"]
        chain = result.violations[0].witness["cycle"]
        assert [op["rank"] for op in chain] == [0, 1]
        assert all(op["kind"] == "recv" for op in chain)
        assert result.stats["cycles"] == 1

    def test_three_rank_cycle(self):
        ir = prog(
            [("r", 2, 1), ("s", 1, 1)],
            [("r", 0, 1), ("s", 2, 1)],
            [("r", 1, 1), ("s", 0, 1)],
        )
        result = check_deadlock(ir, execute_abstract(ir))
        assert kinds(result) == ["cycle"]
        assert len(result.violations[0].witness["cycle"]) == 3

    def test_stall_names_finished_source_and_dependents(self):
        # rank 2 finishes without sending; 0 waits on 2, 1 waits on 0
        ir = prog([("r", 2, 9), ("s", 1, 5)], [("r", 0, 5)], [])
        result = check_deadlock(ir, execute_abstract(ir))
        assert kinds(result) == ["stall"]
        witness = result.violations[0].witness
        assert witness["recv"]["rank"] == 0
        assert witness["recv"]["source"] == 2
        assert witness["source_finished"] is True
        assert witness["dependent_ranks"] == [1]

    def test_cycle_plus_stall_chain(self):
        # 0<->1 cycle; 2 stalls on finished rank 3
        ir = prog(
            [("r", 1, 1), ("s", 1, 2)],
            [("r", 0, 2), ("s", 0, 1)],
            [("r", 3, 7)],
            [],
        )
        result = check_deadlock(ir, execute_abstract(ir))
        assert sorted(kinds(result)) == ["cycle", "stall"]


class TestRaces:
    def test_concurrent_sends_to_shared_channel(self):
        ir = prog(
            [("s", 2, 5)],
            [("s", 2, 5)],
            [("r", 0, 5), ("r", 1, 5)],
        )
        result = check_races(ir, execute_abstract(ir))
        assert kinds(result) == ["message-race"]
        witness = result.violations[0].witness
        assert witness["channel"] == {"dst": 2, "tag": 5}
        assert {s["rank"] for s in witness["sends"]} == {0, 1}

    def test_happens_before_ordered_sends_do_not_race(self):
        # 1's send is causally after 0's: 0 -> 2 -> 1 -> 2 chain
        ir = prog(
            [("s", 2, 5)],
            [("r", 2, 9), ("s", 2, 5)],
            [("r", 0, 5), ("s", 1, 9), ("r", 1, 5)],
        )
        result = check_races(ir, execute_abstract(ir))
        assert result.ok
        assert result.stats["checked_pairs"] == 1

    def test_same_source_pairs_are_program_ordered(self):
        ir = prog([("s", 1, 5), ("s", 1, 5)], [("r", 0, 5), ("r", 0, 5)])
        result = check_races(ir, execute_abstract(ir))
        assert result.ok
        assert result.stats["checked_pairs"] == 0

    def test_stuck_program_is_skipped(self):
        ir = prog([("r", 1, 1)], [("r", 0, 1)])
        result = check_races(ir, execute_abstract(ir))
        assert result.ok
        assert result.stats["skipped"] == "program deadlocks"


class TestVerifyIR:
    def test_returns_all_three_analyses(self):
        ir = prog([("s", 1, 7)], [("r", 0, 7)])
        matching, deadlock, races = verify_ir(ir)
        assert (matching.name, deadlock.name, races.name) == (
            "matching", "deadlock", "races",
        )
        assert matching.ok and deadlock.ok and races.ok
