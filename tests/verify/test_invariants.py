"""The paper-invariant proof pass and its certificates."""

import json

import numpy as np
import pytest

from repro.core.mapping import Multipartitioning
from repro.core.modmap import build_modular_mapping
from repro.core.properties import (
    balance_certificate,
    neighbor_certificate,
    validity_certificate,
)
from repro.verify import check_invariants


class TestValidityCertificate:
    def test_valid_case_archives_divisibility(self):
        cert = validity_certificate((3, 3, 3), 9)
        assert cert["ok"]
        assert all(ax["divides"] for ax in cert["axes"])
        assert cert["axes"][0]["others_product"] == 9

    def test_invalid_axis_named(self):
        cert = validity_certificate((1, 2, 2), 4)
        assert not cert["ok"]
        bad = [ax["axis"] for ax in cert["axes"] if not ax["divides"]]
        assert bad == [1, 2]


class TestBalanceCertificate:
    def test_valid(self):
        grid = build_modular_mapping((2, 2, 2), 4).rank_grid((2, 2, 2))
        cert = balance_certificate(grid, 4)
        assert cert["ok"]
        assert all(ax["tiles_per_rank_per_slab"] == 1 for ax in cert["axes"])
        assert "witness" not in cert

    def test_violation_witness_localizes_slab(self):
        # column-block partition: axis-1 slabs are single-owner
        grid = np.repeat(np.arange(2)[None, :], 4, axis=0)
        cert = balance_certificate(grid, 2)
        assert not cert["ok"]
        w = cert["witness"]
        assert w["axis"] == 1
        assert w["count"] != w["expected"]

    def test_non_divisible_slab_reason(self):
        grid = np.zeros((3, 3), dtype=np.int64)
        cert = balance_certificate(grid, 2)
        assert not cert["ok"]
        assert cert["witness"]["reason"] == "slab size not divisible by nprocs"


class TestNeighborCertificate:
    def test_success_archives_successor_tables(self):
        grid = build_modular_mapping((2, 2, 2), 4).rank_grid((2, 2, 2))
        cert = neighbor_certificate(grid)
        assert cert["ok"]
        assert set(cert["successors"]) == {
            "axis0+", "axis0-", "axis1+", "axis1-", "axis2+", "axis2-",
        }
        for succ in cert["successors"].values():
            assert len(succ) == 4

    def test_failure_witness_sorted_owners(self):
        grid = np.array(
            [[0, 1, 2, 3], [1, 0, 3, 2], [2, 3, 1, 0], [3, 2, 0, 1]],
            dtype=np.int64,
        )
        cert = neighbor_certificate(grid)
        assert not cert["ok"]
        w = cert["witness"]
        assert len(w["neighbor_owners"]) > 1
        assert w["neighbor_owners"] == sorted(w["neighbor_owners"])


class TestMappingCertificate:
    @pytest.mark.parametrize("b,p", [((2, 2, 2), 4), ((3, 3, 3), 9),
                                     ((1, 6, 6), 6), ((5, 5), 5)])
    def test_construction_certifies(self, b, p):
        cert = build_modular_mapping(b, p).certificate(b)
        assert cert["ok"]
        assert cert["schema"] == "repro.mapping-certificate.v1"
        assert cert["validity"]["ok"] and cert["balance"]["ok"]
        assert cert["neighbor"]["ok"] and cert["equally_many_to_one"]
        json.dumps(cert)  # JSON-ready throughout


class TestCheckInvariants:
    def test_clean_multipartitioning(self):
        mapping = build_modular_mapping((2, 2, 2), 4)
        mp = Multipartitioning(mapping.rank_grid((2, 2, 2)), 4)
        result, cert = check_invariants(mp, mapping=mapping)
        assert result.ok
        assert cert["ok"] and cert["mapping_consistent"]
        assert result.stats["mapping_checked"]

    def test_bare_array_with_explicit_p(self):
        grid = np.repeat(np.arange(2)[None, :], 4, axis=0)
        result, cert = check_invariants(grid, p=2)
        assert not result.ok
        assert "balance" in [v.kind for v in result.violations]
        assert not cert["ok"]

    def test_tile_swap_breaks_balance_with_witness(self):
        grid = build_modular_mapping((2, 2, 2), 4).rank_grid((2, 2, 2))
        grid = grid.copy()
        a = (0, 0, 0)
        b = next(
            idx for idx in np.ndindex(*grid.shape) if grid[idx] != grid[a]
        )
        grid[a], grid[b] = grid[b], grid[a]
        result, _ = check_invariants(grid, p=4)
        assert "balance" in [v.kind for v in result.violations]
        w = next(
            v for v in result.violations if v.kind == "balance"
        ).witness
        assert {"axis", "slab", "rank", "count", "expected"} <= set(w)

    def test_mapping_inconsistency_detected(self):
        mapping = build_modular_mapping((2, 2, 2), 4)
        grid = np.roll(mapping.rank_grid((2, 2, 2)), 1, axis=2)
        # the rolled table is still a valid multipartitioning ...
        mp = Multipartitioning(grid, 4)
        # ... but not the one this mapping generates
        result, cert = check_invariants(mp, mapping=mapping)
        assert [v.kind for v in result.violations] == ["mapping-consistency"]
        assert cert["mapping_consistent"] is False
        w = result.violations[0].witness
        assert w["mapping_rank"] != w["owner_rank"]
        assert w["mismatches"] > 0

    def test_validity_violation(self):
        # every rank owns one column: balanced along axis 0 only
        result, _ = check_invariants(
            np.repeat(np.arange(2)[None, :], 2, axis=0), p=2
        )
        kinds = [v.kind for v in result.violations]
        assert "balance" in kinds
