"""Property-based check of the certificate pipeline: every valid
(shape-free) partitioning vector the enumerator produces must certify
balance + neighbor on the concrete ``modular_mapping`` owner table, and a
perturbed assignment must be rejected with a witness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elementary import elementary_partitionings_unordered
from repro.core.modmap import build_modular_mapping
from repro.verify import check_invariants

#: (p, d) pool kept small enough for per-example brute-force certification
_CASES = [
    (gammas, p)
    for p in (2, 3, 4, 6, 8, 9, 12)
    for d in (2, 3)
    for gammas in elementary_partitionings_unordered(p, d)
]


@st.composite
def valid_configs(draw):
    gammas, p = draw(st.sampled_from(_CASES))
    # any permutation of a valid vector is valid: exercise the construction
    # beyond the enumerator's canonical sorted order
    perm = draw(st.permutations(range(len(gammas))))
    return tuple(gammas[i] for i in perm), p


@given(valid_configs())
@settings(max_examples=60, deadline=None)
def test_construction_always_certifies(config):
    gammas, p = config
    cert = build_modular_mapping(gammas, p).certificate(gammas)
    assert cert["ok"], cert
    assert cert["validity"]["ok"]
    assert cert["balance"]["ok"] and "witness" not in cert["balance"]
    assert cert["neighbor"]["ok"]
    # successor tables cover every rank in every signed direction
    assert all(
        len(succ) == p for succ in cert["neighbor"]["successors"].values()
    )


@given(valid_configs(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_perturbed_assignment_rejected(config, rng):
    gammas, p = config
    grid = build_modular_mapping(gammas, p).rank_grid(gammas).copy()
    tiles = list(np.ndindex(*grid.shape))
    a = tiles[rng.randrange(len(tiles))]
    others = [t for t in tiles if grid[t] != grid[a]]
    if not others:  # p == 1-like degenerate corner: nothing to swap
        return
    b = others[rng.randrange(len(others))]
    grid[a], grid[b] = grid[b], grid[a]
    # swapping two tiles with different owners always unbalances the slab
    # counts along every axis where the tiles' coordinates differ
    result, cert = check_invariants(grid, p=p)
    assert not result.ok
    kinds = {v.kind for v in result.violations}
    assert kinds & {"balance", "neighbor", "equally-many-to-one"}
    assert not cert["ok"]
