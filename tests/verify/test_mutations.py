"""Mutation self-test harness: seed one defect per checker class into a
known-good configuration and assert the verifier reports it with a concrete,
JSON-serializable witness.

Mutations over the extracted IR re-enter through :func:`verify_ir`; the
mapping mutation re-enters through :func:`check_invariants`.  Every test
also asserts the *unmutated* configuration verifies cleanly, so a detection
can never be a false positive of the baseline.
"""

import dataclasses
import json

import pytest

from repro.verify import (
    IRRecv,
    IRSend,
    check_invariants,
    extract_program_ir,
    verify_ir,
)
from repro.verify.checker import build_configuration


@pytest.fixture(scope="module")
def config():
    executor, schedule, partitioning, mapping = build_configuration(
        "sp", (8, 8, 8), 4
    )
    ir = extract_program_ir(executor, schedule)
    return ir, partitioning, mapping


@pytest.fixture(scope="module")
def baseline(config):
    ir, partitioning, mapping = config
    results = verify_ir(ir)
    assert all(r.ok for r in results), "baseline must be clean"
    inv, _ = check_invariants(partitioning, mapping=mapping)
    assert inv.ok
    return results


def reindex(ops):
    """Rebuild op ``index`` fields after structural edits (analyses key
    vector clocks by (rank, index) == tuple position)."""
    return tuple(
        dataclasses.replace(op, index=i) for i, op in enumerate(ops)
    )


def all_violations(results):
    return [v for r in results for v in r.violations]


def assert_witnessed(results, analysis, kind):
    """The named checker produced the expected kind, with a JSON witness."""
    matches = [
        v for v in all_violations(results)
        if v.analysis == analysis and v.kind == kind
    ]
    assert matches, (
        f"expected {analysis}/{kind}, got "
        f"{[(v.analysis, v.kind) for v in all_violations(results)]}"
    )
    for v in matches:
        json.dumps(v.witness)  # concrete machine-readable witness
    return matches


class TestDropRecv:
    def test_matching_reports_orphan_send(self, config, baseline):
        ir, _, _ = config
        rank, ops = next(
            (r, ops) for r, ops in enumerate(ir.ranks)
            if any(isinstance(op, IRRecv) for op in ops)
        )
        i = next(
            i for i, op in enumerate(ops) if isinstance(op, IRRecv)
        )
        dropped = ops[i]
        mutated = ir.replace_rank(rank, reindex(ops[:i] + ops[i + 1:]))
        results = verify_ir(mutated)
        matches = assert_witnessed(results, "matching", "orphan-send")
        # the witness names the channel whose receive was dropped
        assert any(
            v.witness["channel"] == {"src": dropped.source, "dst": rank}
            for v in matches
        )


class TestSwapTag:
    def test_matching_reports_both_sides(self, config, baseline):
        ir, _, _ = config
        rank, ops = next(
            (r, ops) for r, ops in enumerate(ir.ranks)
            if any(isinstance(op, IRSend) for op in ops)
        )
        i = next(i for i, op in enumerate(ops) if isinstance(op, IRSend))
        original = ops[i]
        swapped = dataclasses.replace(original, tag=original.tag + 999_983)
        mutated = ir.replace_rank(rank, ops[:i] + (swapped,) + ops[i + 1:])
        results = verify_ir(mutated)
        # the receiver's expected tag never arrives ...
        missing = assert_witnessed(results, "matching", "missing-send")
        assert any(
            v.witness["channel"]["tag"] == original.tag for v in missing
        )
        # ... and the retagged message is never consumed
        orphan = assert_witnessed(results, "matching", "orphan-send")
        assert any(
            swapped.tag in [op["tag"] for op in v.witness["ops"]]
            for v in orphan
        )
        # the starved receive also hangs ranks (as a stall or, when the
        # sweep dependences wrap around, a genuine wait-for cycle)
        deadlocks = [
            v for v in all_violations(results) if v.analysis == "deadlock"
        ]
        assert deadlocks and all(
            v.kind in ("stall", "cycle") for v in deadlocks
        )
        for v in deadlocks:
            json.dumps(v.witness)


class TestRetargetDest:
    def test_deadlock_and_matching_localize_it(self, config, baseline):
        ir, _, _ = config
        send = next(iter(ir.sends()))
        wrong_dest = next(
            d for d in range(ir.nprocs) if d not in (send.dest, send.rank)
        )
        retargeted = dataclasses.replace(send, dest=wrong_dest)
        ops = ir.ranks[send.rank]
        mutated = ir.replace_rank(
            send.rank,
            ops[:send.index] + (retargeted,) + ops[send.index + 1:],
        )
        results = verify_ir(mutated)
        # original receiver starves; the misdirected message is unconsumed
        # (or double-matches the wrong channel)
        missing = assert_witnessed(results, "matching", "missing-send")
        assert any(
            v.witness["channel"]["dst"] == send.dest for v in missing
        )
        deadlocks = [
            v for v in all_violations(results) if v.analysis == "deadlock"
        ]
        assert deadlocks, "starved receive must hang at least one rank"


class TestInjectedConcurrentSend:
    def test_race_checker_catches_tag_collision(self, config, baseline):
        """A duplicate of an existing message sent from a *different* rank:
        two happens-before-concurrent sends now share one (dst, tag)
        channel — exactly what the race analysis (and, on valid configs,
        the neighbor theorem) rules out."""
        ir, _, _ = config
        send = next(iter(ir.sends()))
        imposter_rank = next(
            r for r in range(ir.nprocs) if r not in (send.rank, send.dest)
        )
        ops = ir.ranks[imposter_rank]
        injected = IRSend(
            imposter_rank, 0, send.dest, send.tag, send.nbytes
        )
        mutated = ir.replace_rank(
            imposter_rank, reindex((injected,) + ops)
        )
        results = verify_ir(mutated)
        races = assert_witnessed(results, "races", "message-race")
        witness = races[0].witness
        assert witness["channel"] == {"dst": send.dest, "tag": send.tag}
        assert {s["rank"] for s in witness["sends"]} == {
            send.rank, imposter_rank,
        }


class TestPermuteMappingRow:
    def test_invariants_report_mapping_inconsistency(self, config, baseline):
        ir, partitioning, mapping = config
        assert mapping is not None
        corrupted = dataclasses.replace(
            mapping, matrix=mapping.matrix[::-1].copy()
        )
        # guard: the permutation must actually change the generated table
        assert (
            corrupted.rank_grid(partitioning.gammas)
            != partitioning.owner
        ).any()
        result, cert = check_invariants(partitioning, mapping=corrupted)
        assert not result.ok
        v = next(
            v for v in result.violations if v.kind == "mapping-consistency"
        )
        json.dumps(v.witness)
        assert v.witness["mismatches"] > 0
        assert cert["mapping_consistent"] is False
