"""Tests for the reliable-delivery protocol model checker."""

from repro.verify import check_protocol, verify_config
from repro.verify.protocol import ProtocolState, _initial, explore


class TestExplore:
    def test_initial_state_has_data_on_the_wire(self):
        start = _initial(1)
        assert start.channel == frozenset({("data", 0)})
        assert not start.terminal

    def test_graph_grows_with_message_count(self):
        one, _ = explore(messages=1, max_retries=2)
        two, _ = explore(messages=2, max_retries=2)
        assert len(two) > len(one) > 1

    def test_every_edge_targets_a_known_state(self):
        states, edges = explore(messages=2, max_retries=2)
        for outs in edges.values():
            for key in outs:
                assert key in states

    def test_terminals_have_no_successors(self):
        states, edges = explore(messages=1, max_retries=1)
        for key, state in states.items():
            if state.terminal:
                assert edges.get(key, []) == []


class TestCheckProtocol:
    def test_protocol_is_verified_at_default_bounds(self):
        result = check_protocol()
        assert result.name == "protocol"
        assert result.violations == ()
        assert result.stats["delivered_terminals"] >= 1
        assert result.stats["exhausted_terminals"] >= 1

    def test_deeper_bounds_also_pass(self):
        # a sequence-number boundary plus a bigger retry budget
        result = check_protocol(messages=3, max_retries=3)
        assert result.violations == ()
        assert result.stats["states"] > check_protocol(
            messages=2, max_retries=3
        ).stats["states"]

    def test_stats_are_internally_consistent(self):
        result = check_protocol(messages=2, max_retries=2)
        stats = result.stats
        assert (
            stats["delivered_terminals"] + stats["exhausted_terminals"]
            == stats["terminals"]
        )
        assert stats["transitions"] > stats["states"]

    def test_exhaustion_is_a_terminal_not_a_hang(self):
        # with a tiny retry budget exhaustion must still be reachable and
        # detected, never a stuck state
        result = check_protocol(messages=1, max_retries=1)
        assert result.violations == ()
        assert result.stats["exhausted_terminals"] >= 1


class TestStateVocabulary:
    def test_terminal_phases(self):
        sending = ProtocolState(0, 0, 0, 0, 0, frozenset())
        assert not sending.terminal
        assert ProtocolState(1, 1, 0, 0, 1, frozenset()).terminal
        assert ProtocolState(2, 0, 3, 0, 0, frozenset()).terminal


class TestCheckerIntegration:
    def test_verify_config_attaches_protocol_analysis(self):
        report = verify_config("sp", (8, 8, 8), 4, protocol=True)
        assert report.ok
        names = [a.name for a in report.analyses]
        assert "protocol" in names
        protocol = next(a for a in report.analyses if a.name == "protocol")
        assert protocol.stats["config_channels"] > 0

    def test_protocol_analysis_absent_by_default(self):
        report = verify_config("sp", (8, 8, 8), 4)
        assert "protocol" not in [a.name for a in report.analyses]
