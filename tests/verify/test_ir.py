"""IR extraction: soundness against the engine, phase folding, op record."""

import pytest

from repro.simmpi.message import (
    PHASE_BEGIN,
    PHASE_END,
    Bytes,
    ComputeOp,
    MarkOp,
    RecvOp,
    SendOp,
)
from repro.simmpi.program import op_metadata, record_ops
from repro.verify import IRRecv, IRSend, ProgramIR, extract_program_ir
from repro.verify.checker import build_configuration
from repro.verify.ir import _lower_rank


class TestRecordOps:
    def test_drains_generator_feeding_none_into_recvs(self):
        def prog():
            yield SendOp(1, Bytes(8), tag=5)
            got = yield RecvOp(0, tag=5)
            assert got is None
            yield ComputeOp(1.0)

        ops = record_ops(prog())
        assert [type(op) for op in ops] == [SendOp, RecvOp, ComputeOp]

    def test_custom_recv_value(self):
        def prog():
            got = yield RecvOp(0, tag=1)
            yield SendOp(1, Bytes(got), tag=1)

        ops = record_ops(prog(), recv_value=64)
        assert ops[1].payload.nbytes == 64

    def test_rejects_non_primitive_op(self):
        def prog():
            yield "not an op"

        with pytest.raises(TypeError):
            record_ops(prog())

    def test_op_budget(self):
        def prog():
            while True:
                yield ComputeOp(0.0)

        with pytest.raises(RuntimeError):
            record_ops(prog(), max_ops=10)

    def test_op_metadata_vocabulary(self):
        assert op_metadata(SendOp(3, Bytes(16), tag=7)) == {
            "kind": "send", "dest": 3, "tag": 7, "nbytes": 16,
        }
        assert op_metadata(RecvOp(2, tag=-1))["tag"] == "ANY"
        assert op_metadata(MarkOp("x"))["kind"] == "mark"
        with pytest.raises(TypeError):
            op_metadata(object())


class TestLowerRank:
    def test_phase_spans_fold_into_op_phase(self):
        raw = [
            MarkOp(PHASE_BEGIN + "sweep"),
            MarkOp(PHASE_BEGIN + "x"),
            SendOp(1, Bytes(8), tag=3),
            MarkOp(PHASE_END + "x"),
            RecvOp(1, tag=4),
            MarkOp(PHASE_END + "sweep"),
            ComputeOp(1.0),
        ]
        ops = _lower_rank(0, raw)
        assert isinstance(ops[0], IRSend) and ops[0].phase == "sweep/x"
        assert isinstance(ops[1], IRRecv) and ops[1].phase == "sweep"
        assert ops[2].phase == ""

    def test_mismatched_phase_end_raises(self):
        with pytest.raises(ValueError, match="does not match"):
            _lower_rank(0, [MarkOp(PHASE_BEGIN + "a"), MarkOp(PHASE_END + "b")])

    def test_unclosed_phase_raises(self):
        with pytest.raises(ValueError, match="unclosed"):
            _lower_rank(0, [MarkOp(PHASE_BEGIN + "a")])


class TestExtraction:
    @pytest.mark.parametrize("app,p", [("sp", 4), ("adi", 6), ("bt", 4)])
    def test_ir_matches_engine_traffic(self, app, p):
        """The extracted IR declares exactly the messages the engine moves:
        same count, same total bytes — the engine run is the oracle for the
        per-rank extraction's soundness."""
        executor, schedule, _, _ = build_configuration(app, (8, 8, 8), p)
        ir = extract_program_ir(executor, schedule)
        run = executor.run_skeleton(schedule)
        assert ir.nprocs == p
        assert ir.total_sends == run.message_count
        assert ir.total_send_bytes == run.total_bytes
        # every rank must both compute and communicate in these apps
        for ops in ir.ranks:
            assert any(isinstance(op, IRSend) for op in ops)
            assert any(isinstance(op, IRRecv) for op in ops)

    def test_phases_annotated_when_marks_enabled(self):
        executor, schedule, _, _ = build_configuration("sp", (8, 8, 8), 4)
        ir = extract_program_ir(executor, schedule)
        phases = {op.phase for op in ir.sends()}
        assert phases and all(p for p in phases)

    def test_replace_rank_substitutes_one_rank(self):
        executor, schedule, _, _ = build_configuration("sp", (8, 8, 8), 2)
        ir = extract_program_ir(executor, schedule)
        mutated = ir.replace_rank(0, ())
        assert mutated.ranks[0] == ()
        assert mutated.ranks[1] == ir.ranks[1]
        assert ir.ranks[0]  # original untouched

    def test_rank_count_validated(self):
        with pytest.raises(ValueError):
            ProgramIR(3, ((), ()))
