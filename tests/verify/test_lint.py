"""The determinism lint: rule coverage on snippets + the repo itself."""

import textwrap
from pathlib import Path

from repro.verify.lint import Finding, lint_paths, lint_source, main

SRC = Path(__file__).resolve().parents[2] / "src"


def codes(source, path="<string>"):
    return [f.code for f in lint_source(textwrap.dedent(source), path)]


class TestVR101SetIteration:
    def test_for_over_set_literal(self):
        assert codes("for x in {1, 2}:\n    print(x)\n") == ["VR101"]

    def test_for_over_set_call(self):
        assert codes("for x in set(items):\n    emit(x)\n") == ["VR101"]

    def test_list_conversion_of_set(self):
        assert codes("out = list({1, 2})\n") == ["VR101"]

    def test_tuple_of_inferred_set_variable(self):
        src = """
        s = set()
        s.add(1)
        out = tuple(s)
        """
        assert codes(src) == ["VR101"]

    def test_annotated_set_argument(self):
        src = """
        def f(owners: set[int]):
            return [x for x in owners]
        """
        assert codes(src) == ["VR101"]

    def test_dict_of_sets_items_unpack(self):
        # the exact shape that hid in core/diagnose.py
        src = """
        def f():
            owners_of: dict[int, set[int]] = {}
            for q, nbrs in owners_of.items():
                return (q, tuple(nbrs))
        """
        assert codes(src) == ["VR101"]

    def test_set_algebra_result(self):
        src = """
        a = set(); b = set()
        for x in a | b:
            emit(x)
        """
        assert codes(src) == ["VR101"]

    def test_sorted_is_allowed(self):
        assert codes("out = sorted({3, 1, 2})\n") == []
        assert codes("for x in sorted(set(items)):\n    emit(x)\n") == []

    def test_order_insensitive_consumers_allowed(self):
        src = """
        s = {1, 2, 3}
        n = len(s)
        m = max(s)
        total = sum(s)
        hit = 2 in s
        """
        assert codes(src) == []

    def test_join_over_set_flagged(self):
        assert codes("txt = ','.join({'a', 'b'})\n") == ["VR101"]

    def test_set_comp_from_set_allowed(self):
        # order is re-lost immediately; nothing leaks
        assert codes("t = {x + 1 for x in {1, 2}}\n") == []


class TestVR102Randomness:
    def test_global_random_flagged(self):
        assert codes("x = random.random()\n") == ["VR102"]
        assert codes("random.shuffle(xs)\n") == ["VR102"]

    def test_seeded_generator_allowed(self):
        assert codes("rng = random.Random(7)\nx = rng.random()\n") == []
        assert codes("random.seed(0)\n") == []

    def test_legacy_numpy_random_flagged(self):
        assert codes("x = np.random.rand(3)\n") == ["VR102"]
        assert codes("x = numpy.random.randint(10)\n") == ["VR102"]

    def test_default_rng_with_seed_allowed(self):
        assert codes("rng = np.random.default_rng(2002)\n") == []

    def test_default_rng_unseeded_flagged(self):
        assert codes("rng = np.random.default_rng()\n") == ["VR102"]

    def test_literal_none_seed_flagged(self):
        # None pulls OS entropy — exactly as unseeded as no argument
        assert codes("rng = np.random.default_rng(None)\n") == ["VR102"]
        assert codes("rng = np.random.default_rng(seed=None)\n") == [
            "VR102"
        ]
        assert codes("r = random.Random(None)\n") == ["VR102"]

    def test_seed_variable_allowed(self):
        # a threaded CLI --seed value is exactly the sanctioned pattern
        assert codes("rng = np.random.default_rng(args.seed)\n") == []
        assert codes("rng = np.random.default_rng(seed=seed)\n") == []
        assert codes("r = random.Random(args.seed)\n") == []


class TestVR103WallClock:
    def test_wall_clock_flagged_inside_simmpi(self):
        src = "t = time.perf_counter()\n"
        assert codes(src, "src/repro/simmpi/engine.py") == ["VR103"]
        assert codes("t = time.time()\n", "src/repro/simmpi/x.py") == [
            "VR103"
        ]

    def test_wall_clock_allowed_outside_simmpi(self):
        assert codes("t = time.perf_counter()\n", "src/repro/runner/b.py") \
            == []

    def test_virtual_time_unaffected(self):
        src = "clock = engine.now()\n"
        assert codes(src, "src/repro/simmpi/engine.py") == []


class TestHarness:
    def test_finding_renders_path_line_code(self):
        f = Finding("a.py", 3, 7, "VR101", "msg")
        assert str(f) == "a.py:3:7: VR101 msg"

    def test_findings_sorted_by_location(self):
        src = "for x in {1}:\n    y = list({2})\n"
        found = lint_source(src, "z.py")
        assert [f.line for f in found] == sorted(f.line for f in found)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = sorted({1, 2})\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("x = list({1, 2})\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert "VR101" in capsys.readouterr().out
        assert main([]) == 2

    def test_directory_recursion(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("for x in {1}:\n    pass\n")
        assert [f.code for f in lint_paths([tmp_path])] == ["VR101"]


class TestRepositoryIsClean:
    def test_src_tree_has_no_findings(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(str(f) for f in findings)
