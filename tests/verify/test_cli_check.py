"""The ``repro check`` CLI and ``sweep --verify`` wiring."""

import json

from repro.cli import main


class TestCheckCommand:
    def test_clean_config_exits_zero(self, capsys):
        code = main(["check", "--app", "sp", "--shape", "8x8x8", "-p", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("VERIFIED")
        for name in ("matching", "deadlock", "races", "invariants"):
            assert name in out

    def test_json_document(self, capsys):
        code = main(
            ["check", "--app", "bt", "--shape", "8,8,8", "-p", "9", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.verify-report.v1"
        assert doc["ok"] is True
        assert doc["config"]["app"] == "bt"
        assert doc["config"]["gammas"] == [3, 3, 3, 1]

    def test_no_aggregate_and_steps(self, capsys):
        code = main(
            ["check", "--app", "adi", "--shape", "8x8x8", "-p", "6",
             "--no-aggregate", "--steps", "2"]
        )
        assert code == 0

    def test_failing_config_exits_one(self, capsys):
        code = main(
            ["check", "--app", "adi", "--shape", "8x8x8", "-p", "7",
             "--partitioner", "diagonal"]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out


class TestSweepVerifyFlag:
    def test_sweep_verify_runs_clean(self, capsys, tmp_path):
        code = main(
            ["sweep", "--shapes", "8x8x8", "--nprocs", "2,4",
             "--apps", "sp", "--mode", "plan", "--verify",
             "--cache-dir", str(tmp_path / "cache"), "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["results"]) == 2
        assert all("error" not in r for r in doc["results"])
