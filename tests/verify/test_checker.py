"""End-to-end verification of the standard configuration grid, report
shape, and the runner's verify pre-flight."""

import json

import pytest

from repro.runner import ExperimentSpec
from repro.runner.execute import run_spec
from repro.verify import SCHEMA, verify_config


class TestStandardGrid:
    @pytest.mark.parametrize("app", ["sp", "bt", "adi"])
    @pytest.mark.parametrize("p", [2, 4, 6, 9])
    @pytest.mark.parametrize("aggregate", [True, False])
    def test_grid_verifies_clean(self, app, p, aggregate):
        report = verify_config(app, (8, 8, 8), p, aggregate=aggregate)
        assert report.ok, report.summary()
        names = [a.name for a in report.analyses]
        assert names == ["matching", "deadlock", "races", "invariants"]
        assert report.certificate is not None and report.certificate["ok"]

    @pytest.mark.parametrize("app", ["sp", "bt", "adi"])
    def test_larger_shape(self, app):
        assert verify_config(app, (12, 12, 12), 6).ok

    def test_diagonal_partitioner(self):
        report = verify_config("adi", (8, 8, 8), 9, partitioner="diagonal")
        assert report.ok

    def test_stencil_rhs_flow(self):
        assert verify_config("sp", (8, 8, 8), 4, stencil_rhs=True).ok

    def test_multi_step(self):
        assert verify_config("adi", (8, 8, 8), 4, steps=2).ok


class TestReportDocument:
    def test_schema_and_round_trip(self):
        report = verify_config("sp", (8, 8, 8), 4)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema"] == SCHEMA == "repro.verify-report.v1"
        assert doc["ok"] is True
        assert set(doc["analyses"]) == {
            "matching", "deadlock", "races", "invariants",
        }
        cfg = doc["config"]
        assert cfg["app"] == "sp" and cfg["p"] == 4
        assert cfg["gammas"] == [2, 2, 2]
        ir = cfg["ir"]
        assert ir["ranks"] == 4 and ir["messages"] > 0 and ir["bytes"] > 0
        cert = doc["certificate"]
        assert cert["schema"] == "repro.mapping-certificate.v1"
        assert cert["ok"] and "matrix" in cert and "moduli" in cert

    def test_stats_are_populated(self):
        report = verify_config("sp", (8, 8, 8), 4)
        by_name = {a.name: a for a in report.analyses}
        assert by_name["matching"].stats["sends"] > 0
        assert by_name["races"].stats["channels"] > 0
        assert by_name["invariants"].stats["tiles"] == 8

    def test_unplannable_config_reported_not_raised(self):
        report = verify_config(
            "adi", (8, 8, 8), 7, partitioner="diagonal"
        )
        assert not report.ok
        v = report.violations()[0]
        assert v.kind == "unplannable"
        assert "FAILED" in report.summary()
        json.dumps(report.to_dict())

    def test_unknown_app_reported(self):
        report = verify_config("lu", (8, 8, 8), 4)
        assert not report.ok
        assert report.violations()[0].kind == "unplannable"


class TestRunnerPreFlight:
    def test_run_spec_verify_clean_result_unchanged(self):
        spec = ExperimentSpec(
            app="sp", shape=(8, 8, 8), p=4, mode="plan"
        )
        plain = run_spec(spec)
        verified = run_spec(spec, verify=True)
        # a clean pre-flight leaves the result (and cache schema) untouched
        assert verified == plain
        assert "verify" not in verified

    def test_run_spec_verify_modeled_mode(self):
        spec = ExperimentSpec(
            app="adi", shape=(8, 8, 8), p=2, mode="modeled"
        )
        result = run_spec(spec, verify=True)
        assert "error" not in result
        assert result["modeled_time"] > 0
